#!/usr/bin/env bash
# Tier-1 verification: formatting, lints, build, tests — everything a PR
# must keep green. Runs fully offline (the workspace has no registry
# dependencies; see DESIGN.md "Dependency policy").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (workspace, deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test"
cargo test -q

echo "== integration tests (root package: lifecycle, properties, crash matrix)"
# Includes the fault-injection crash-recovery matrix (bounded crash-point
# sweep) and the file-backed close/reopen round trip.
cargo test -q -p sim

echo "== durability smoke + WAL/recovery metrics dump"
cargo run -q -p sim --example durability_metrics

echo "== sim-check schema gate (UNIVERSITY + ADDS scale)"
# Fails on any Error-level diagnostic from the bundled example schemas.
cargo run -q -p sim --example schema_check

echo "== miri (sim-types + sim-luc value codec, undefined-behavior check)"
# The workspace forbids unsafe, but the value codecs still exercise every
# byte-level encoding path — run them under Miri when the component exists.
if cargo miri --version >/dev/null 2>&1; then
    MIRIFLAGS="-Zmiri-strict-provenance" cargo miri test -p sim-types -q
    MIRIFLAGS="-Zmiri-strict-provenance" cargo miri test -p sim-luc -q value_codec
else
    echo "   miri component not installed; skipping (rustup +nightly component add miri)"
fi

echo "== bench harness (compile + unit tests, no timing loops)"
(cd crates/bench && cargo clippy --all-targets --features bench -- -D warnings && cargo test -q)

echo "== PR4 bench smoke (check mode): group-commit fsyncs/txn + plan-cache hit ratio"
# Asserts < 1 fsync per committed txn when batched (>= 5x amortization) and
# a non-zero plan-cache hit ratio on a hot query; dumps BENCH_pr4.json.
(cd crates/bench && cargo run -q --bin pr4_smoke)

echo "CI OK"
