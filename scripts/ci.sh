#!/usr/bin/env bash
# Tier-1 verification: formatting, lints, build, tests — everything a PR
# must keep green. Runs fully offline (the workspace has no registry
# dependencies; see DESIGN.md "Dependency policy").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (workspace, deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== sim-lint (workspace lint: unwrap policy, metric names, diagnostic codes)"
# SIM-L001 no unwrap/expect on user-reachable paths, SIM-L002 metric-name
# literals match the central registry, SIM-L003 diagnostic codes unique
# and documented in DESIGN.md. Exit 1 on findings fails the build.
cargo run -q --release -p sim --bin sim-lint

echo "== cargo build --release"
cargo build --release

echo "== cargo test"
cargo test -q

echo "== integration tests (root package: lifecycle, properties, crash matrix)"
# Includes the fault-injection crash-recovery matrix (bounded crash-point
# sweep) and the file-backed close/reopen round trip.
cargo test -q -p sim

echo "== sim-oracle differential gate (200 deterministic workloads)"
# Reference interpreter vs. the real engine on all three disk backends;
# same seed => byte-identical report. On divergence the oracle shrinks
# the workload and writes oracle-failure.simwl (replay with --replay).
cargo run -q --release -p sim --bin sim-oracle -- --iters 200 --seed 0xS1M

echo "== sim-oracle statistics gate (120 workloads with mid-workload analyze)"
# Mixes !analyze into the generated control ops: plans are re-chosen under
# the cost-based model mid-workload (generation bump) and every retrieve
# must still agree with the reference interpreter, lock-step.
cargo run -q --release -p sim --bin sim-oracle -- --iters 120 --stats --seed 0xSTATS

echo "== sim-oracle concurrent gate (120 interleaved two-session workloads)"
# Seeded interleavings over ConcurrentDb (strict 2PL + snapshot reads),
# replayed serially on the reference interpreter: every committed txn's
# statement outcomes and every snapshot read must match a serial order.
cargo run -q --release -p sim --bin sim-oracle -- --concurrent 120 --seed 0xS1M

if [ "${ORACLE_DEEP:-0}" = "1" ]; then
    echo "== sim-oracle deep profile (long fuzz + injected-crash sweeps)"
    # Scheduled/dispatch CI only: longer workloads, a bigger seed space,
    # and ORACLE_DEEP=1 extends tests/oracle_corpus.rs with fault sweeps.
    cargo run -q --release -p sim --bin sim-oracle -- --iters 2000 --seed 0xDEEPHUNT
    cargo run -q --release -p sim --bin sim-oracle -- --iters 500 --steps 60 --seed 0xFUZZB
    ORACLE_DEEP=1 cargo test -q -p sim --test oracle_corpus
fi

echo "== durability smoke + WAL/recovery metrics dump"
cargo run -q -p sim --example durability_metrics

echo "== sim-check schema gate (UNIVERSITY + ADDS scale)"
# Fails on any Error-level diagnostic from the bundled example schemas.
cargo run -q -p sim --example schema_check

echo "== miri (sim-types + sim-check + sim-luc value codec, undefined-behavior check)"
# The workspace forbids unsafe, but the value codecs still exercise every
# byte-level encoding path — run them under Miri when the component exists.
if cargo miri --version >/dev/null 2>&1; then
    MIRIFLAGS="-Zmiri-strict-provenance" cargo miri test -p sim-types -q
    # sim-check rides along: the plan verifier runs on every plan-cache
    # miss, so it must stay Miri-clean.
    MIRIFLAGS="-Zmiri-strict-provenance" cargo miri test -p sim-check -q
    MIRIFLAGS="-Zmiri-strict-provenance" cargo miri test -p sim-luc -q value_codec
else
    echo "   miri component not installed; skipping (rustup +nightly component add miri)"
fi

echo "== bench harness (compile + unit tests, no timing loops)"
(cd crates/bench && cargo clippy --all-targets --features bench -- -D warnings && cargo test -q)

echo "== PR4 bench smoke (check mode): group-commit fsyncs/txn + plan-cache hit ratio"
# Asserts < 1 fsync per committed txn when batched (>= 5x amortization) and
# a non-zero plan-cache hit ratio on a hot query; dumps BENCH_pr4.json.
(cd crates/bench && cargo run -q --bin pr4_smoke)

echo "== PR6 bench smoke (check mode): observability overhead + recorder retention"
# Asserts the flight recorder + event log cost < 5% of statement wall time
# and that the recorder retains >= 64 statements; dumps BENCH_pr6.json.
(cd crates/bench && cargo run -q --bin pr6_smoke)

echo "== PR7 bench smoke (check mode): plan-verifier wiring + overhead gate"
# Asserts every plan-cache miss is verified with zero violations and that
# static plan verification costs < 5% of planning time; dumps BENCH_pr7.json.
(cd crates/bench && cargo run -q --release --bin pr7_smoke)

echo "== PR8 bench smoke (check mode): snapshot readers under an open writer"
# Asserts snapshot-retrieve throughput stays >= 0.5x idle while a writer
# transaction holds its X locks, with zero SIM-C001 victim aborts; dumps
# BENCH_pr8.json.
(cd crates/bench && cargo run -q --release --bin pr8_smoke)

echo "== PR9 bench smoke (check mode): 64 concurrent network clients"
# Asserts >= 64 concurrent sim-server connections aggregate >= 3x the
# single-connection committed-txn throughput (cross-session group-commit
# barrier amortizes the durability fsync) with zero SIM-C001 aborts on a
# disjoint-class workload; dumps BENCH_pr9.json.
(cd crates/bench && cargo run -q --release --bin pr9_smoke)

echo "== PR10 bench smoke (check mode): cost-based vs heuristic plan I/O"
# Asserts that after analyze() the cost-based plans beat the heuristic
# plans by >= 2x measured block reads on a skewed two-class workload,
# with identical results; dumps BENCH_pr10.json.
(cd crates/bench && cargo run -q --release --bin pr10_smoke)

echo "== sim-dump smoke: offline introspection of a freshly crashed directory"
# crash_dir leaves committed work only in the WAL plus a torn final frame;
# sim-dump must classify that as benign (exit 0) and emit valid JSON.
DUMP_DIR="target/sim-dump-smoke"
cargo run -q --release -p sim --example crash_dir -- "$DUMP_DIR" --torn
cargo run -q --release -p sim --bin sim-dump -- --json "$DUMP_DIR" > /dev/null
cargo run -q --release -p sim --bin sim-dump -- "$DUMP_DIR" | grep -q "TORN"
rm -rf "$DUMP_DIR"

echo "CI OK"
