#!/usr/bin/env bash
# Tier-1 verification: formatting, lints, build, tests — everything a PR
# must keep green. Runs fully offline (the workspace has no registry
# dependencies; see DESIGN.md "Dependency policy").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (workspace, deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test"
cargo test -q

echo "== bench harness (compile + unit tests, no timing loops)"
(cd crates/bench && cargo clippy --all-targets --features bench -- -D warnings && cargo test -q)

echo "CI OK"
